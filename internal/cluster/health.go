package cluster

// Replica health tracking for the gateway: a background prober marks
// replicas up or down, and request handling consults the marks to skip
// known-dead targets. A transport failure during routing marks the
// replica down immediately (MarkDown); only a successful probe revives
// it, so one crashed replica costs each key at most one failed attempt.

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// defaultProbeInterval paces the background prober; defaultProbeTimeout
// bounds one probe round trip.
const (
	defaultProbeInterval = 2 * time.Second
	defaultProbeTimeout  = 2 * time.Second
)

// Health tracks liveness of a set of replicas. Create it with NewHealth;
// it is safe for concurrent use.
type Health struct {
	client   *http.Client
	replicas []string
	interval time.Duration

	mu sync.Mutex
	up map[string]bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealth returns a tracker over replicas (base URLs). Every replica
// starts up (optimism costs one failed request at worst; pessimism would
// refuse all traffic until the first probe round). A nil client gets a
// private one with the probe timeout. Call Start to begin probing.
func NewHealth(replicas []string, client *http.Client, interval time.Duration) *Health {
	if client == nil {
		client = &http.Client{Timeout: defaultProbeTimeout}
	}
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	h := &Health{
		client:   client,
		replicas: append([]string(nil), replicas...),
		interval: interval,
		up:       make(map[string]bool, len(replicas)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, r := range replicas {
		h.up[r] = true
	}
	return h
}

// Start launches the background prober. Close stops it.
func (h *Health) Start() {
	go func() {
		defer close(h.done)
		tick := time.NewTicker(h.interval)
		defer tick.Stop()
		h.ProbeAll(context.Background())
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				h.ProbeAll(context.Background())
			}
		}
	}()
}

// Close stops the prober and waits for it to exit. A Health that was
// never Started closes immediately.
func (h *Health) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	select {
	case <-h.done:
	default:
		select {
		case <-h.done:
		case <-time.After(h.interval + defaultProbeTimeout):
		}
	}
}

// ProbeAll probes every replica once, concurrently, and updates the
// marks. It is exported so tests (and a gateway that just saw a failure)
// can force a round without waiting for the ticker.
func (h *Health) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range h.replicas {
		wg.Add(1)
		go func(replica string) {
			defer wg.Done()
			ok := h.probe(ctx, replica)
			h.mu.Lock()
			h.up[replica] = ok
			h.mu.Unlock()
		}(r)
	}
	wg.Wait()
}

// probe is one liveness check: GET /healthz, 200 means alive. A draining
// replica still answers 200 ("draining") and keeps serving until its
// listener closes, so it stays routable through its drain.
func (h *Health) probe(ctx context.Context, replica string) bool {
	ctx, cancel := context.WithTimeout(ctx, defaultProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Up reports the replica's current mark.
func (h *Health) Up(replica string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.up[replica]
}

// MarkDown records an observed failure (a transport error during
// routing). The next successful probe revives the replica.
func (h *Health) MarkDown(replica string) {
	h.mu.Lock()
	if _, known := h.up[replica]; known {
		h.up[replica] = false
	}
	h.mu.Unlock()
}

// UpCount reports how many replicas are currently marked up.
func (h *Health) UpCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, ok := range h.up {
		if ok {
			n++
		}
	}
	return n
}

// Snapshot returns the marks keyed by replica (a copy).
func (h *Health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.up))
	for r, ok := range h.up {
		out[r] = ok
	}
	return out
}
