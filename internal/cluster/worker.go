package cluster

// The worker half of the distributed solve: execute one subtree lease,
// exchanging incumbents with the coordinator while the search runs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/setcover"
)

// incumbentInterval paces the worker→coordinator incumbent exchange. It
// trades bound freshness against chatter; the exchange only accelerates
// pruning, so the value is a tuning knob, not a correctness one.
const incumbentInterval = 250 * time.Millisecond

// ExecuteSubtree runs one subtree lease: rebuild the problem, recompute
// the (deterministic) plan, solve the leased branch serially, and return
// the result. While the search runs, the worker exchanges incumbents
// with req.Coordinator (when set) at a fixed cadence: its own best going
// out, the cluster-wide best coming back in as the external bound. A
// coordinator that stops answering only stops the exchange — the search
// itself never depends on it.
func ExecuteSubtree(ctx context.Context, req *SubtreeRequest, client *http.Client) (*SubtreeResponse, error) {
	// A lease carrying a traceparent gets its own child trace: the
	// subtree span below parents to the coordinator's lease span, and the
	// recorded spans ship back in the response for the coordinator to
	// fold in. A malformed traceparent degrades to no tracing, never to
	// an error.
	var ltr *obs.Trace
	if tid, pid, ok := obs.ParseTraceparent(req.Traceparent); ok {
		proc := "worker"
		if cur := obs.FromContext(ctx); cur != nil {
			proc = cur.Process() // the daemon's configured process name
		}
		ltr = obs.NewTraceWithParent(tid, pid, proc)
		ctx = obs.ContextWithTrace(ctx, ltr)
	}
	p, weights, err := req.Problem.Decode()
	if err != nil {
		return nil, err
	}
	opts, err := req.Opts.Decode()
	if err != nil {
		return nil, err
	}
	pl, err := p.PlanExact(weights, opts)
	if err != nil {
		return nil, err
	}
	if pl.Terminal() != nil {
		// The coordinator would never lease a terminal plan: the two sides
		// disagree about the problem, which is a protocol error, not a
		// solvable lease.
		return nil, fmt.Errorf("cluster: plan for lease %s/%d is terminal; coordinator and worker disagree", req.SolveID, req.Branch)
	}

	// localBest is this subtree's own best (what the worker reports out);
	// globalBest is the cluster-wide best (what the search prunes with).
	// Both start from the dispatch-time incumbent, at worst the greedy
	// seed cost the plan recomputed.
	seed := int64(pl.Greedy().Cost)
	if req.Incumbent > 0 && int64(req.Incumbent) < seed {
		seed = int64(req.Incumbent)
	}
	var localBest, globalBest atomic.Int64
	localBest.Store(0) // 0 = nothing found by this subtree yet
	globalBest.Store(seed)

	exchCtx, stopExchange := context.WithCancel(ctx)
	defer stopExchange()
	if req.Coordinator != "" {
		go func() {
			tick := time.NewTicker(incumbentInterval)
			defer tick.Stop()
			for {
				select {
				case <-exchCtx.Done():
					return
				case <-tick.C:
					if best := exchangeIncumbent(exchCtx, client, req.Coordinator, req.SolveID, int(localBest.Load())); best > 0 {
						lowerInt64(&globalBest, int64(best))
					}
				}
			}
		}()
	}

	_, ssp := obs.StartSpan(ctx, "subtree")
	res, err := pl.SolveSubtree(req.Branch, setcover.SubtreeOptions{
		MaxNodes: req.MaxNodes,
		Context:  ctx,
		Bound:    func() int { return int(globalBest.Load()) },
		OnImprove: func(inc setcover.Incumbent) {
			lowerOrSetInt64(&localBest, int64(inc.Cost))
			lowerInt64(&globalBest, int64(inc.Cost))
		},
	})
	if err != nil {
		ssp.End()
		return nil, err
	}
	ssp.SetInt("branch", int64(req.Branch))
	ssp.SetInt("nodes", res.Nodes)
	ssp.SetInt("found", b2i(res.Found))
	ssp.SetInt("truncated", b2i(res.Truncated))
	if res.Found {
		ssp.SetInt("cost", int64(res.Cost))
	}
	ssp.End()
	stopExchange()
	// One final push so the coordinator hears the last improvement even
	// if the ticker never fired after it (short subtrees).
	if req.Coordinator != "" && localBest.Load() > 0 {
		exchangeIncumbent(ctx, client, req.Coordinator, req.SolveID, int(localBest.Load()))
	}
	return &SubtreeResponse{SolveID: req.SolveID, Result: res, Spans: ltr.Snapshot()}, nil
}

// b2i renders a bool as a span attribute value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// lowerInt64 CASes v down to x when x is an improvement.
func lowerInt64(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x >= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// lowerOrSetInt64 is lowerInt64 treating 0 as "unset".
func lowerOrSetInt64(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if cur != 0 && x >= cur {
			return
		}
		if v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// exchangeIncumbent posts one IncumbentMsg and returns the peer's best
// (0 on any failure — the exchange is best-effort by design).
func exchangeIncumbent(ctx context.Context, client *http.Client, base, solveID string, cost int) int {
	body, err := json.Marshal(IncumbentMsg{SolveID: solveID, Cost: cost})
	if err != nil {
		return 0
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/dist/incumbent", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var msg IncumbentMsg
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		return 0
	}
	return msg.Cost
}
