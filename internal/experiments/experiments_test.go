package experiments

import (
	"strings"
	"testing"

	"repro/internal/gatsby"
)

// A small-circuit sweep keeps the test fast while exercising the full
// Table 1 / Table 2 pipeline including the GATSBY baseline.
func smallConfig() Config {
	return Config{
		Circuits:   []string{"s420", "s820"},
		Cycles:     64,
		Seed:       1,
		WithGatsby: true,
		Gatsby: gatsby.Config{
			Population:  8,
			Generations: 6,
		},
	}
}

func TestRunSmallSuite(t *testing.T) {
	results, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, cr := range results {
		if cr.Faults == 0 || cr.Patterns == 0 {
			t.Errorf("%s: empty flow artifacts: %+v", cr.Circuit, cr)
		}
		for _, kind := range TPGKinds {
			tr := cr.ByTPG[kind]
			if tr == nil || tr.Solution == nil {
				t.Errorf("%s/%s: missing solution", cr.Circuit, kind)
				continue
			}
			s := tr.Solution
			if s.NumTriplets() == 0 || s.NumTriplets() > s.MatrixRows {
				t.Errorf("%s/%s: %d triplets of %d candidates",
					cr.Circuit, kind, s.NumTriplets(), s.MatrixRows)
			}
			// The headline claim: covering needs (far) fewer triplets than
			// the candidate set, and reduction prunes the matrix hard.
			if s.ResidualCols > s.MatrixCols/2 {
				t.Errorf("%s/%s: weak reduction %d -> %d cols",
					cr.Circuit, kind, s.MatrixCols, s.ResidualCols)
			}
			if tr.TooLarge {
				t.Errorf("%s/%s: small circuit rejected as too large", cr.Circuit, kind)
			}
			if tr.Gatsby == nil {
				t.Errorf("%s/%s: baseline missing", cr.Circuit, kind)
			}
		}
	}
}

// The paper's headline comparison: the covering solution never needs more
// triplets than the GA baseline needs for the same covered faults.
func TestCoveringBeatsOrMatchesGatsby(t *testing.T) {
	results, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	wins, losses := 0, 0
	for _, cr := range results {
		for _, kind := range TPGKinds {
			tr := cr.ByTPG[kind]
			if tr.Gatsby == nil {
				continue
			}
			if tr.Solution.NumTriplets() < len(tr.Gatsby.Triplets) {
				wins++
			}
			if tr.Solution.NumTriplets() > len(tr.Gatsby.Triplets) {
				losses++
				t.Logf("%s/%s: covering %d vs GATSBY %d (coverage %.3f)",
					cr.Circuit, kind, tr.Solution.NumTriplets(),
					len(tr.Gatsby.Triplets), tr.Gatsby.Coverage)
			}
		}
	}
	// The paper reports one exception (s838) across its whole table; allow
	// a similar minority here but demand covering wins overall.
	if losses > wins {
		t.Errorf("covering lost more often than it won: %d wins, %d losses", wins, losses)
	}
}

func TestFeasibilityGateMirrorsPaper(t *testing.T) {
	// With a small budget the baseline must refuse, producing the paper's
	// "-" entries, while the covering flow still succeeds.
	cfg := smallConfig()
	cfg.Circuits = []string{"s420"}
	cfg.Gatsby.MaxFaults = 10
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := results[0].ByTPG["adder"]
	if !tr.TooLarge {
		t.Error("expected the baseline to be gated off")
	}
	if tr.Solution == nil || tr.Solution.NumTriplets() == 0 {
		t.Error("covering flow must still run")
	}
}

func TestWriteTables(t *testing.T) {
	results, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTable1(&b, results, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "s420") || !strings.Contains(b.String(), "GATSBY") {
		t.Errorf("Table 1 incomplete:\n%s", b.String())
	}
	b.Reset()
	if err := WriteTable2(&b, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Errorf("Table 2 missing matrix sizes:\n%s", b.String())
	}
}

func TestTradeoffCurveShape(t *testing.T) {
	cfg := Config{Seed: 1, Cycles: 32}
	points, err := Tradeoff("s420", "adder", []int{1, 8, 64, 256}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	// Figure 2 shape: more test length, fewer (or equal) reseedings; the
	// extremes must differ for the curve to be meaningful.
	for i := 1; i < len(points); i++ {
		if points[i].Triplets > points[i-1].Triplets {
			t.Errorf("curve not monotone: %+v", points)
		}
	}
	if points[0].Triplets == points[len(points)-1].Triplets {
		t.Error("curve is flat; sweep range too narrow to show the trade-off")
	}
	var b strings.Builder
	if err := WriteFigure2(&b, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Test Length") {
		t.Errorf("figure rendering incomplete:\n%s", b.String())
	}
}

func TestTable1CircuitList(t *testing.T) {
	list := Table1Circuits()
	if len(list) != 16 {
		t.Errorf("Table 1 has %d circuits, want 16", len(list))
	}
	seen := map[string]bool{}
	for _, c := range list {
		if seen[c] {
			t.Errorf("duplicate circuit %s", c)
		}
		seen[c] = true
	}
	for _, want := range []string{"s1238", "s13207", "s15850", "c7552"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestUnknownCircuitError(t *testing.T) {
	cfg := Config{Circuits: []string{"nope"}, Seed: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for unknown circuit")
	}
}
