// Package experiments regenerates the paper's evaluation artifacts:
//
//   - Table 1 — final reseeding solutions (#Triplets, test length) per
//     circuit and per accumulator TPG, with the GATSBY baseline columns;
//   - Table 2 — set covering anatomy: initial Detection Matrix size, the
//     reduction's effect, and the split between necessary triplets and
//     triplets chosen by the exact solver;
//   - Figure 2 — the reseedings-vs-test-length trade-off on s1238 with an
//     adder-based accumulator.
//
// Results reproduce the paper's qualitative shape (who wins, where the
// covering approach's advantages come from), not its absolute numbers: the
// circuits here are the synthetic ISCAS-profile stand-ins described in
// DESIGN.md and the substrate is this repository's own ATPG and fault
// simulator rather than TestGen on a SparcStation.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gatsby"
	"repro/internal/setcover"
	"repro/internal/tpg"
)

// TPGKinds are the three accumulator TPGs of the paper's evaluation.
var TPGKinds = []string{"adder", "multiplier", "subtracter"}

// Config tunes an experiment run.
type Config struct {
	// Circuits to include, in order; nil selects the paper's Table 1 list.
	Circuits []string
	// Cycles is the candidate evolution length T (default 64).
	Cycles int
	// Seed drives every stochastic component.
	Seed int64
	// WithGatsby enables the GA baseline columns (Table 1 only).
	WithGatsby bool
	// Gatsby tunes the baseline; its MaxFaults feasibility gate decides
	// which circuits get "-" entries as in the paper.
	Gatsby gatsby.Config
	// ATPG tunes the shared test generation step.
	ATPG atpg.Options
	// Parallelism bounds the worker pool used per solve for Detection
	// Matrix construction, the ATPG's fault-simulation phases, the exact
	// covering solver's branch-and-bound fan-out, and the GATSBY baseline's
	// fitness grading. 1 forces serial; 0 means one worker per available
	// processor. A zero Parallelism inside ATPG or Gatsby inherits this
	// value; set those sub-options to a nonzero degree to control a stage
	// independently.
	Parallelism int
	// SolveBudget, when positive, bounds the wall-clock time of each exact
	// covering solve (the anytime contract): a truncated solve keeps the
	// best cover found so far and reports Optimal = false in Table 2.
	SolveBudget time.Duration
	// Context, when non-nil, cancels the run end to end: ATPG, matrix
	// construction and the GA baseline abort with the context's error,
	// while in-flight exact covering solves finish anytime-style
	// (best-so-far, Optimal = false). Run returns the circuits completed
	// before cancellation together with the error, so a driver can render
	// partial tables.
	Context context.Context
	// Engine, when non-nil, supplies the artifact cache the flow runs on:
	// ATPG preparations and Detection Matrices are shared across circuits,
	// TPG kinds and repeated calls (Figure2 after Run re-uses the s1238
	// preparation, for example). Nil uses a private engine per call.
	Engine *engine.Engine
}

func (c Config) withDefaults() Config {
	if c.Circuits == nil {
		c.Circuits = Table1Circuits()
	}
	if c.Cycles == 0 {
		c.Cycles = 64
	}
	if c.Engine == nil {
		c.Engine = engine.New(engine.Options{Parallelism: c.Parallelism})
	}
	return c
}

// Table1Circuits returns the circuits of the paper's Table 1, in its order.
func Table1Circuits() []string {
	return []string{
		"c499", "c880", "c1355", "c1908", "c7552",
		"s420", "s641", "s820", "s838", "s953",
		"s1238", "s1423", "s5378", "s9234", "s13207", "s15850",
	}
}

// TPGResult is one circuit × TPG cell of Table 1 / Table 2.
type TPGResult struct {
	Solution *core.Solution
	// Gatsby is nil when the baseline was not run; TooLarge reports the
	// paper's "circuit too large for GATSBY" case.
	Gatsby   *gatsby.Result
	TooLarge bool
}

// CircuitResult aggregates one benchmark circuit's experiments.
type CircuitResult struct {
	Circuit    string
	ScanInputs int
	Faults     int // |F|: ATPG-detected target faults
	Patterns   int // |ATPGTS|
	ByTPG      map[string]*TPGResult
}

// Run executes the flow for every configured circuit and TPG. It is the
// shared driver behind Table 1 and Table 2. When the configured Context is
// cancelled mid-run, Run returns the circuits completed so far together
// with the cancellation error.
func Run(cfg Config) ([]*CircuitResult, error) {
	cfg = cfg.withDefaults()
	var out []*CircuitResult
	for _, name := range cfg.Circuits {
		cr, err := RunCircuit(name, cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", name, err)
		}
		out = append(out, cr)
	}
	return out, nil
}

// RunCircuit executes the flow for one circuit across all TPG kinds, on
// the configured Engine's artifact caches.
func RunCircuit(name string, cfg Config) (*CircuitResult, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.Context
	atpgOpts := cfg.ATPG
	if atpgOpts.Seed == 0 {
		atpgOpts.Seed = cfg.Seed + 1
	}
	if atpgOpts.Parallelism == 0 {
		atpgOpts.Parallelism = cfg.Parallelism
	}
	flow, _, err := cfg.Engine.PrepareNamed(ctx, name, atpgOpts)
	if err != nil {
		return nil, err
	}
	scan := flow.Circuit
	cr := &CircuitResult{
		Circuit:    name,
		ScanInputs: len(scan.Inputs),
		Faults:     len(flow.TargetFaults),
		Patterns:   len(flow.Patterns),
		ByTPG:      make(map[string]*TPGResult),
	}
	for _, kind := range TPGKinds {
		sol, err := cfg.Engine.Run(ctx, name, kind, atpgOpts, core.Options{
			Cycles:      cfg.Cycles,
			Seed:        cfg.Seed + 2,
			Parallelism: cfg.Parallelism,
			Exact:       setcover.ExactOptions{TimeBudget: cfg.SolveBudget},
		})
		if err != nil {
			return nil, err
		}
		tr := &TPGResult{Solution: sol}
		if cfg.WithGatsby {
			gen, err := tpg.ByName(kind, len(scan.Inputs))
			if err != nil {
				return nil, err
			}
			gcfg := cfg.Gatsby
			gcfg.Seed = cfg.Seed + 3
			gcfg.Context = ctx
			if gcfg.Parallelism == 0 {
				gcfg.Parallelism = cfg.Parallelism
			}
			if gcfg.Cycles == 0 {
				// Match the covering flow's evolution length so the
				// #Triplets comparison is apples to apples (Figure 2 shows
				// the count falls with T, so mismatched budgets would
				// decide the table, not the algorithms).
				gcfg.Cycles = cfg.Cycles
			}
			gres, err := gatsby.Run(scan, flow.TargetFaults, gen, gcfg)
			switch {
			case errors.Is(err, gatsby.ErrTooLarge):
				tr.TooLarge = true
			case err != nil:
				return nil, err
			default:
				tr.Gatsby = gres
			}
		}
		cr.ByTPG[kind] = tr
	}
	return cr, nil
}

// Figure2Point is one sample of the trade-off curve.
type Figure2Point = core.TradeoffPoint

// Figure2 computes the paper's Figure 2: the number of reseedings versus
// global test length for s1238 with an adder-based accumulator, swept over
// the candidate evolution length T.
func Figure2(cfg Config) ([]Figure2Point, error) {
	return Tradeoff("s1238", "adder", nil, cfg)
}

// Tradeoff computes a reseedings-vs-test-length curve for any circuit and
// TPG kind. A nil cyclesList selects a geometric sweep 1..1024. Each point
// is one Engine solve, so the preparation is shared with any earlier run
// on the same Engine and every point's matrix lands in the cache.
func Tradeoff(circuit, kind string, cyclesList []int, cfg Config) ([]Figure2Point, error) {
	cfg = cfg.withDefaults()
	if cyclesList == nil {
		cyclesList = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	}
	atpgOpts := cfg.ATPG
	if atpgOpts.Seed == 0 {
		atpgOpts.Seed = cfg.Seed + 1
	}
	if atpgOpts.Parallelism == 0 {
		atpgOpts.Parallelism = cfg.Parallelism
	}
	var points []Figure2Point
	for _, t := range cyclesList {
		sol, err := cfg.Engine.Run(cfg.Context, circuit, kind, atpgOpts, core.Options{
			Cycles:      t,
			Seed:        cfg.Seed + 2,
			Parallelism: cfg.Parallelism,
			Exact:       setcover.ExactOptions{TimeBudget: cfg.SolveBudget},
		})
		if err != nil {
			return nil, fmt.Errorf("tradeoff at T=%d: %w", t, err)
		}
		points = append(points, Figure2Point{
			Cycles:     t,
			Triplets:   sol.NumTriplets(),
			TestLength: sol.TestLength,
		})
	}
	// Present the curve as the paper does: test length on the X axis,
	// reseedings on Y, sorted by test length.
	sort.Slice(points, func(a, b int) bool { return points[a].TestLength < points[b].TestLength })
	return points, nil
}
