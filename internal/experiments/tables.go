package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
)

// WriteTable1 renders the Table 1 layout: per circuit and per TPG the final
// solution's #Triplets and test length, alongside the GATSBY baseline (or
// "-" where the baseline is infeasible, as in the paper).
func WriteTable1(w io.Writer, results []*CircuitResult, withGatsby bool) error {
	cols := []string{"Circuit", "|F|", "|ATPGTS|"}
	for _, kind := range TPGKinds {
		cols = append(cols, kind+" #T", kind+" TL")
		if withGatsby {
			cols = append(cols, kind+" GATSBY #T", kind+" GATSBY TL")
		}
	}
	t := report.NewTable("Table 1: Reseeding solution (set covering vs GATSBY)", cols...)
	for _, cr := range results {
		row := []string{cr.Circuit, itoa(cr.Faults), itoa(cr.Patterns)}
		for _, kind := range TPGKinds {
			tr := cr.ByTPG[kind]
			if tr == nil {
				row = append(row, "-", "-")
				if withGatsby {
					row = append(row, "-", "-")
				}
				continue
			}
			row = append(row, itoa(tr.Solution.NumTriplets()), itoa(tr.Solution.TestLength))
			if withGatsby {
				switch {
				case tr.TooLarge:
					row = append(row, "-", "-")
				case tr.Gatsby != nil:
					gt := fmt.Sprintf("%d", len(tr.Gatsby.Triplets))
					if tr.Gatsby.Stalled {
						gt += fmt.Sprintf(" (%.1f%%)", tr.Gatsby.Coverage*100)
					}
					row = append(row, gt, itoa(tr.Gatsby.TestLength))
				default:
					row = append(row, "-", "-")
				}
			}
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// WriteTable2 renders the Table 2 layout: the initial Detection Matrix size
// and, per TPG, the residual matrix after reduction, the necessary triplet
// count, and the triplets contributed by the exact solver.
func WriteTable2(w io.Writer, results []*CircuitResult) error {
	cols := []string{"Circuit", "Matrix (#T x #F)"}
	for _, kind := range TPGKinds {
		cols = append(cols,
			kind+" reduced",
			kind+" #necessary",
			kind+" #solver",
		)
	}
	t := report.NewTable("Table 2: Set covering algorithm anatomy", cols...)
	for _, cr := range results {
		row := []string{cr.Circuit, ""}
		for i, kind := range TPGKinds {
			tr := cr.ByTPG[kind]
			if tr == nil {
				row = append(row, "-", "-", "-")
				continue
			}
			s := tr.Solution
			if i == 0 {
				row[1] = fmt.Sprintf("%dx%d", s.MatrixRows, s.MatrixCols)
			}
			row = append(row,
				fmt.Sprintf("%dx%d", s.ResidualRows, s.ResidualCols),
				itoa(s.NumNecessary),
				itoa(s.NumFromSolver),
			)
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// WriteFigure2 renders the trade-off curve both as a table and as an ASCII
// chart, with the number of reseedings annotated on each point as in the
// paper's figure.
func WriteFigure2(w io.Writer, points []Figure2Point) error {
	t := report.NewTable("Figure 2: Trade-off reseedings vs. test length (s1238, adder)",
		"T (cycles)", "#Triplets", "Test Length")
	var chart []report.Point
	for _, p := range points {
		t.AddRow(itoa(p.Cycles), itoa(p.Triplets), itoa(p.TestLength))
		chart = append(chart, report.Point{
			X:     float64(p.TestLength),
			Y:     float64(p.Triplets),
			Label: itoa(p.Triplets),
		})
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.Chart(w, "", "global test length", "#reseedings", chart)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
