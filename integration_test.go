package reseeding

// Cross-stack integration tests: the reseeding solution computed by the
// behavioral flow is replayed through the synthesized gate-level TPG
// hardware, and the resulting pattern stream is fault-simulated against the
// UUT. This closes the loop the paper assumes: the triplets stored in the
// BIST ROM drive a real circuit, not a model.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/fsim"
	"repro/internal/logicsim"
	"repro/internal/tpg"
	"repro/internal/tpggen"
)

// hardwareExpand runs a triplet on the synthesized TPG netlist and returns
// the pattern sequence it applies to the UUT.
func hardwareExpand(t *testing.T, kind string, width int, tr tpg.Triplet) []bitvec.Vector {
	t.Helper()
	hw, err := tpggen.FromKind(kind, width)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logicsim.NewSequential(hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetState(tr.Delta); err != nil {
		t.Fatal(err)
	}
	in := bitvec.New(len(hw.Inputs))
	for i := 0; i < len(hw.Inputs); i++ {
		in.SetBit(i, tr.Theta.Bit(i))
	}
	out := make([]bitvec.Vector, tr.Cycles)
	for c := 0; c < tr.Cycles; c++ {
		o, err := sim.StepOne(in)
		if err != nil {
			t.Fatal(err)
		}
		out[c] = o
	}
	return out
}

func TestHardwareReplayDetectsAllFaults(t *testing.T) {
	for _, kind := range []string{"adder", "subtracter"} {
		t.Run(kind, func(t *testing.T) {
			scan, err := bench.ScanView("s820")
			if err != nil {
				t.Fatal(err)
			}
			flow, err := core.Prepare(scan, ATPGOptions{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := tpg.ByName(kind, len(scan.Inputs))
			if err != nil {
				t.Fatal(err)
			}
			sol, err := flow.Solve(gen, core.Options{Cycles: 48, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}

			// Replay every selected triplet on the gate-level TPG.
			var patterns []bitvec.Vector
			for _, st := range sol.Triplets {
				tr := st.Triplet
				tr.Cycles = st.EffectiveCycles
				patterns = append(patterns, hardwareExpand(t, kind, len(scan.Inputs), tr)...)
			}
			if len(patterns) != sol.TestLength {
				t.Fatalf("hardware stream has %d patterns, solution says %d",
					len(patterns), sol.TestLength)
			}

			sim, err := fsim.New(scan)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(flow.TargetFaults, patterns, fsim.Options{DropDetected: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.NumDetected != len(flow.TargetFaults) {
				t.Errorf("hardware replay detects %d of %d target faults",
					res.NumDetected, len(flow.TargetFaults))
			}
		})
	}
}

// The LFSR path exercises the multiple-polynomial selection: θ = 0 selects
// the polynomial the synthesized netlist was built with, so a flow run with
// a single-polynomial LFSR replays exactly.
func TestHardwareReplayLFSR(t *testing.T) {
	scan, err := bench.ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	flow, err := core.Prepare(scan, ATPGOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	width := len(scan.Inputs)
	taps := tpg.DefaultPolynomials(width, 1, 1)
	gen, err := tpg.NewLFSR(width, taps)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := flow.Solve(gen, core.Options{Cycles: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var patterns []bitvec.Vector
	for _, st := range sol.Triplets {
		tr := st.Triplet
		tr.Cycles = st.EffectiveCycles
		patterns = append(patterns, hardwareExpand(t, "lfsr", width, tr)...)
	}
	sim, err := fsim.New(scan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(flow.TargetFaults, patterns, fsim.Options{DropDetected: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDetected != len(flow.TargetFaults) {
		t.Errorf("LFSR hardware replay detects %d of %d", res.NumDetected, len(flow.TargetFaults))
	}
}

// The BIST hardware itself is a circuit: run the ATPG on the synthesized
// adder TPG to confirm the whole stack handles DFF-bearing designs through
// the scan transformation (self-test of the self-test hardware).
func TestSelfTestOfTPGHardware(t *testing.T) {
	hw, err := tpggen.Adder(12)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := hw.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	flow, err := core.Prepare(scan, ATPGOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if flow.ATPG.TestableCoverage() < 0.999 {
		t.Errorf("adder TPG scan view testable coverage %.4f", flow.ATPG.TestableCoverage())
	}
	gen, err := tpg.NewAdder(len(scan.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := flow.Solve(gen, core.Options{Cycles: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumTriplets() == 0 {
		t.Error("no reseeding solution for the TPG's own scan test")
	}
}
