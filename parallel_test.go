package reseeding

// End-to-end determinism of the parallel solve pipeline: the whole flow —
// ATPG fault grading, Detection Matrix construction, reduction and exact
// covering — must compute the same solution for every Parallelism value.
// The per-layer guarantees live in internal/fsim, internal/dmatrix and
// internal/setcover; this test pins them down at the public API.
//
// SolverNodes is zeroed before comparison: with a parallel covering solve
// the node count depends on pruning races against the shared incumbent, the
// one field the bit-identical guarantee explicitly excludes (it is an
// effort counter, like wall-clock time).

import (
	"reflect"
	"runtime"
	"testing"
)

func TestSolveBitIdenticalAcrossParallelism(t *testing.T) {
	for _, circuit := range []string{"s420", "s820"} {
		scan, err := ScanView(circuit)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := NewTPG("adder", len(scan.Inputs))
		if err != nil {
			t.Fatal(err)
		}
		var reference *Solution
		for _, j := range []int{1, 2, runtime.GOMAXPROCS(0), 0} {
			flow, err := Prepare(scan, ATPGOptions{Seed: 1, Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			sol, err := flow.Solve(gen, Options{Cycles: 32, Seed: 2, Parallelism: j})
			if err != nil {
				t.Fatal(err)
			}
			sol.SolverNodes = 0
			if reference == nil {
				reference = sol
				continue
			}
			if !reflect.DeepEqual(reference, sol) {
				t.Errorf("%s: solution at Parallelism %d differs from serial: %d triplets / length %d vs %d / %d",
					circuit, j, sol.NumTriplets(), sol.TestLength,
					reference.NumTriplets(), reference.TestLength)
			}
		}
	}
}
