// Package reseeding computes minimal reseeding solutions for Functional
// BIST test pattern generators by casting triplet selection as a unate set
// covering problem, reproducing "On Applying the Set Covering Model to
// Reseeding" (Chiusano, Di Carlo, Prinetto, Wunderlich — DATE 2001).
//
// A unit under test (UUT) is a combinational gate-level circuit (sequential
// circuits are handled through their full-scan view). A test pattern
// generator (TPG) is an existing functional module — an adder, subtracter or
// multiplier accumulator, or an LFSR — that applies its state register to
// the UUT inputs every clock cycle. A triplet (δ, θ, T) seeds the TPG and
// lets it run for T cycles; a reseeding solution is a set of triplets whose
// united test sets detect every target stuck-at fault.
//
// The flow is:
//
//	scan, _ := reseeding.ScanView("s1238")        // benchmark UUT
//	flow, _ := reseeding.Prepare(scan, reseeding.ATPGOptions{Seed: 1})
//	gen, _ := reseeding.NewTPG("adder", len(scan.Inputs))
//	sol, _ := flow.Solve(gen, reseeding.Options{Cycles: 64, Seed: 2})
//	fmt.Println(sol.NumTriplets(), sol.TestLength)
//
// Prepare runs the built-in ATPG once per circuit; Solve builds the
// Detection Matrix for one generator, reduces it by essentiality and
// dominance, and solves the residual covering problem exactly.
//
// # The Engine (v2 API)
//
// Services answering many reseeding queries use a long-lived Engine
// instead of the one-shot flow above. An Engine memoizes Prepare artifacts
// per circuit and Detection Matrices per (circuit, generator kind,
// evolution length, seed), deduplicates concurrent identical requests
// (singleflight: N goroutines asking for the same circuit run exactly one
// ATPG), and answers plain, JSON-serializable Requests:
//
//	eng := reseeding.NewEngine(reseeding.EngineOptions{})
//	resp, _ := eng.Solve(ctx, reseeding.Request{
//	        Circuit: "s1238", TPG: "adder", Cycles: 64, Seed: 2,
//	})
//	fmt.Println(resp.Solution.NumTriplets(), resp.MatrixCached)
//
// The context threads through every phase — ATPG fault simulation, matrix
// row batches, and the exact covering solve — so cancellation and
// deadlines propagate end to end: a Solve cancelled during the covering
// phase returns the best cover found so far (Optimal = false,
// Response.Interrupted = true), one cancelled earlier returns the
// context's error. See internal/engine for the cache keying and
// invalidation rules.
//
// The v1 entry points (Prepare, Run) remain as thin wrappers over a
// package-default Engine: existing callers compile unchanged and now share
// its artifact caches. Flow.Solve is unchanged and cache-free; pair it
// with Engine.SolveFlow to run caller-defined generators with engine
// cancellation.
//
// # Parallelism
//
// The hot paths of Solve — grading every candidate (δ, θ, T) triplet
// against the fault list, and the exact covering solve of the reduced
// matrix — run on a bounded worker pool. ATPGOptions.Parallelism controls
// the fault-simulation fan-out inside Prepare, and Options.Parallelism
// controls both the Detection Matrix build and the covering solver's
// branch-and-bound fan-out inside Solve; in all of them, 1 forces the
// serial path and 0 (the zero value) uses one worker per available
// processor. Parallel runs are guaranteed bit-identical to serial runs —
// see internal/fsim, internal/dmatrix and internal/setcover for the
// determinism contract and the tests that enforce it. (The solution is
// covered by the guarantee; the SolverNodes effort counter, like
// wall-clock time, is not, and neither is the best-so-far of a
// budget-truncated solve, which reports Optimal = false.)
//
// # Anytime solving
//
// The exact covering solve honors a budget through Options.Exact
// (ExactOptions): a node budget (MaxNodes), a wall-clock budget
// (TimeBudget), or a cancellation Context. A truncated solve is not an
// error — it returns the best cover found so far, never worse than the
// greedy incumbent, with Solution.Optimal = false.
package reseeding

import (
	"context"
	"io"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/gatsby"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/setcover"
	"repro/internal/store"
	"repro/internal/tpg"
	"repro/internal/tpggen"
)

// Circuit is a gate-level netlist. Construct one with ParseBench, the
// builder methods, or a named benchmark via OpenBenchmark/ScanView.
type Circuit = netlist.Circuit

// Gate is one node of a Circuit.
type Gate = netlist.Gate

// Fault is a single stuck-at fault on a circuit line.
type Fault = fault.Fault

// Generator is a functional module used as a test pattern generator.
type Generator = tpg.Generator

// Triplet is one reseeding: state seed δ, input value θ, evolution length T.
type Triplet = tpg.Triplet

// Flow carries the per-circuit artifacts (fault list, ATPG test set) shared
// by every generator and evolution length.
type Flow = core.Flow

// Solution is a computed reseeding solution with its covering statistics.
type Solution = core.Solution

// SelectedTriplet is one reseeding of a Solution.
type SelectedTriplet = core.SelectedTriplet

// Options configures Flow.Solve.
type Options = core.Options

// ExactOptions tunes the exact covering solver reachable through
// Options.Exact: node budget, wall-clock budget and cancellation context
// (the anytime contract), the branch-and-bound worker-pool fan-out, and
// the lower-bound mode (BoundMode).
type ExactOptions = setcover.ExactOptions

// BoundMode selects the exact solver's lower bound (ExactOptions.Bound).
// Completed solves return bit-identical covers in every mode; only the
// searched node count and wall time differ.
type BoundMode = setcover.BoundMode

// The bound modes: the default Lagrangian dual bound (BoundAuto,
// BoundLagrangian) and the counting baseline (BoundCounting).
const (
	BoundAuto       = setcover.BoundAuto
	BoundLagrangian = setcover.BoundLagrangian
	BoundCounting   = setcover.BoundCounting
)

// ATPGOptions configures the deterministic test generation step.
type ATPGOptions = atpg.Options

// ATPGResult reports the outcome of test generation.
type ATPGResult = atpg.Result

// TradeoffPoint is one sample of the reseedings-vs-test-length curve.
type TradeoffPoint = core.TradeoffPoint

// GatsbyConfig tunes the genetic-algorithm baseline.
type GatsbyConfig = gatsby.Config

// GatsbyResult is a baseline reseeding solution.
type GatsbyResult = gatsby.Result

// Solver kinds for Options.Solver.
const (
	SolverExact          = core.SolverExact
	SolverGreedy         = core.SolverGreedy
	SolverGreedyNoReduce = core.SolverGreedyNoReduce
)

// Objectives for Options.Objective.
const (
	// MinimizeTriplets minimizes the reseeding count (ROM area), the
	// paper's objective.
	MinimizeTriplets = core.MinimizeTriplets
	// MinimizeTestLength minimizes the summed trimmed test lengths via
	// weighted covering.
	MinimizeTestLength = core.MinimizeTestLength
)

// ErrGatsbyTooLarge reports that the baseline's simulation budget rejects
// the circuit (the paper's "-" entries for s13207 and s15850).
var ErrGatsbyTooLarge = gatsby.ErrTooLarge

// ParseBench reads a circuit in the ISCAS ".bench" text format and returns
// it finalized.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return netlist.Parse(name, r)
}

// FormatBench renders a circuit in ".bench" format.
func FormatBench(c *Circuit) string { return netlist.Format(c) }

// Benchmarks lists the built-in benchmark circuit names (synthetic stand-ins
// for the ISCAS'85/'89 suite; see DESIGN.md for the substitution rationale).
func Benchmarks() []string { return bench.List() }

// OpenBenchmark generates the named benchmark circuit. Sequential circuits
// keep their flip-flops; use ScanView for the combinational test view.
func OpenBenchmark(name string) (*Circuit, error) { return bench.Named(name) }

// ScanView generates the named benchmark in full-scan combinational form,
// the shape consumed by Prepare.
func ScanView(name string) (*Circuit, error) { return bench.ScanView(name) }

// Faults returns the collapsed stuck-at fault list of a combinational
// circuit. Use FaultsWithStats to also obtain the collapsing statistics.
func Faults(c *Circuit) ([]Fault, error) {
	list, _, err := fault.List(c)
	return list, err
}

// FaultStats reports the effect of structural equivalence collapsing:
// total faults before collapsing, representatives kept, class count and
// the largest class.
type FaultStats = fault.CollapseStats

// FaultsWithStats returns the collapsed stuck-at fault list of a
// combinational circuit together with the collapsing statistics that
// Faults discards.
func FaultsWithStats(c *Circuit) ([]Fault, FaultStats, error) {
	return fault.List(c)
}

// NewTPG constructs a generator by kind: "adder", "subtracter",
// "multiplier", or "lfsr". Width must equal the UUT's input count.
func NewTPG(kind string, width int) (Generator, error) { return tpg.ByName(kind, width) }

// TPGKinds lists the generator kinds accepted by NewTPG.
func TPGKinds() []string { return tpg.Kinds() }

// Engine is the long-lived, concurrency-safe front door of the reseeding
// flow: it memoizes Prepare artifacts and Detection Matrices with
// singleflight deduplication and answers serializable Requests. See
// internal/engine for the cache keying and invalidation rules.
type Engine = engine.Engine

// EngineOptions configures NewEngine: the default worker-pool degree and
// the engine-wide ATPG tuning (which is part of the flow cache key).
type EngineOptions = engine.Options

// EngineStats is a snapshot of an Engine's cache counters.
type EngineStats = engine.Stats

// Request is one serializable reseeding query answered by Engine.Solve:
// circuit name or inline .bench source, TPG kind, cycles, seeds, solver,
// objective and budgets, all plain JSON-taggable values. Request.Validate
// checks it without solving; violations are typed *RequestError values.
type Request = engine.Request

// RequestError explains one way a Request is invalid (which field, and
// why). Engine.Solve returns these — possibly several, joined — for
// malformed requests; unwrap with errors.As. cmd/reseed and the HTTP
// server's 400 mapping share this type.
type RequestError = engine.RequestError

// Incumbent is one anytime progress snapshot of an exact covering solve:
// the best cover known so far. Engine.SolveObserved delivers these while a
// long solve runs — the heartbeat of the reseedd job API.
type Incumbent = engine.Incumbent

// ArtifactStore is the Engine's optional second-level artifact cache:
// persistence of ATPG preparations and Detection Matrices across process
// restarts. Set EngineOptions.Store to enable it; OpenStore returns the
// on-disk implementation.
type ArtifactStore = engine.ArtifactStore

// Store is the on-disk ArtifactStore: content-addressed JSON records under
// one root directory, written atomically. See internal/store for the
// layout and encodings.
type Store = store.Store

// OpenStore opens the on-disk artifact store rooted at dir, creating the
// directory tree as needed.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Response is the serializable outcome of Engine.Solve: the Solution plus
// the resolved circuit, the ATPG summary and cache observability fields.
type Response = engine.Response

// NewEngine returns an Engine with the given defaults.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// defaultEngine backs the v1 entry points, so they share one process-wide
// artifact cache.
var defaultEngine = engine.New(engine.Options{})

// DefaultEngine returns the package-default Engine the v1 wrappers
// (Prepare, Run) are served by. Flush it to drop their caches.
func DefaultEngine() *Engine { return defaultEngine }

// Prepare enumerates faults and runs the ATPG on a combinational circuit,
// producing the Flow whose Solve method computes reseeding solutions.
//
// Since the v2 redesign, Prepare is a thin wrapper over the package
// default Engine: the result is memoized per (circuit content, ATPG
// options) and shared — treat the returned Flow as immutable. A non-nil
// ATPGOptions.Context cancels the preparation (cancellation of a shared
// in-flight preparation only takes effect when its last waiter is gone).
func Prepare(c *Circuit, opts ATPGOptions) (*Flow, error) {
	f, _, err := defaultEngine.PrepareCircuit(orBackground(opts.Context), c, opts)
	return f, err
}

// Run is the one-shot convenience flow on a named benchmark circuit. It is
// a thin wrapper over the package-default Engine, so repeated runs share
// cached ATPG preparations and Detection Matrices. The Context fields of
// either options struct cancel the run end to end.
func Run(circuit, tpgKind string, atpgOpts ATPGOptions, opts Options) (*Solution, error) {
	ctx := orBackground(atpgOpts.Context)
	if atpgOpts.Context == nil && opts.Context != nil {
		ctx = opts.Context
	}
	return defaultEngine.Run(ctx, circuit, tpgKind, atpgOpts, opts)
}

// orBackground substitutes the non-cancellable background context for nil.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// RunGatsby runs the genetic-algorithm baseline on the same target fault
// list a Flow would use, for comparison tables.
func RunGatsby(c *Circuit, faults []Fault, gen Generator, cfg GatsbyConfig) (*GatsbyResult, error) {
	return gatsby.Run(c, faults, gen, cfg)
}

// CoverProblem exposes the generic unate covering engine (rows cover
// columns) for uses beyond reseeding.
type CoverProblem = setcover.Problem

// NewCoverProblem returns an empty covering problem over numCols columns.
func NewCoverProblem(numCols int) *CoverProblem { return setcover.NewProblem(numCols) }

// SynthesizeTPG emits the named generator kind as a gate-level netlist: the
// BIST hardware corresponding to the behavioral Generator, with the state
// register as DFFs, θ as primary inputs, and the pattern as primary
// outputs. The netlist's cycle-by-cycle behaviour matches the behavioral
// model exactly (verified by the tpggen package tests).
func SynthesizeTPG(kind string, width int) (*Circuit, error) {
	return tpggen.FromKind(kind, width)
}

// SeqSimulator steps sequential circuits cycle by cycle (64 parallel
// streams), e.g. to run a synthesized TPG netlist.
type SeqSimulator = logicsim.SeqSimulator

// NewSequentialSimulator returns a cycle simulator for a finalized circuit.
func NewSequentialSimulator(c *Circuit) (*SeqSimulator, error) {
	return logicsim.NewSequential(c)
}

// ExperimentConfig drives the paper's evaluation tables.
type ExperimentConfig = experiments.Config

// CircuitResult aggregates one circuit's Table 1 / Table 2 data.
type CircuitResult = experiments.CircuitResult

// RunExperiments executes the Table 1 / Table 2 flow over the configured
// circuits; see cmd/tables for the presentation layer.
func RunExperiments(cfg ExperimentConfig) ([]*CircuitResult, error) {
	return experiments.Run(cfg)
}
