package reseeding_test

// Runnable godoc examples for the public API. Every expected output below is
// executed and checked by `go test`; the pinned numbers double as a
// regression net for the deterministic flow (fixed seeds, and the
// parallelism determinism guarantee means they hold at any -j).

import (
	"context"
	"fmt"

	reseeding "repro"
)

// ExampleEngine is the v2 front door: a long-lived Engine answers
// serializable Requests, caching the ATPG preparation and the Detection
// Matrix so a warm request only pays for the covering solve. The warm
// solution is bit-identical to the cold one.
func ExampleEngine() {
	eng := reseeding.NewEngine(reseeding.EngineOptions{})
	ctx := context.Background()
	req := reseeding.Request{Circuit: "s420", TPG: "adder", Cycles: 64, Seed: 2}

	cold, err := eng.Solve(ctx, req)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cold: %d triplets, test length %d (matrix cached=%v)\n",
		cold.Solution.NumTriplets(), cold.Solution.TestLength, cold.MatrixCached)

	warm, err := eng.Solve(ctx, req)
	if err != nil {
		panic(err)
	}
	fmt.Printf("warm: identical=%v (matrix cached=%v)\n",
		warm.Solution.TestLength == cold.Solution.TestLength &&
			warm.Solution.NumTriplets() == cold.Solution.NumTriplets(),
		warm.MatrixCached)
	// Output:
	// cold: 13 triplets, test length 370 (matrix cached=false)
	// warm: identical=true (matrix cached=true)
}

// Example is the paper's flow end to end: generate the benchmark UUT in its
// full-scan view, run the ATPG once, pick a functional module as the test
// pattern generator, and solve the set covering problem for a minimal
// reseeding solution.
func Example() {
	scan, err := reseeding.ScanView("s420")
	if err != nil {
		panic(err)
	}
	flow, err := reseeding.Prepare(scan, reseeding.ATPGOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	gen, err := reseeding.NewTPG("adder", len(scan.Inputs))
	if err != nil {
		panic(err)
	}
	sol, err := flow.Solve(gen, reseeding.Options{Cycles: 64, Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ATPG: %d patterns for %d target faults\n", len(flow.Patterns), len(flow.TargetFaults))
	fmt.Printf("solution: %d triplets, test length %d, optimal %v\n",
		sol.NumTriplets(), sol.TestLength, sol.Optimal)
	// Output:
	// ATPG: 60 patterns for 972 target faults
	// solution: 13 triplets, test length 370, optimal true
}

// ExampleFlow_Solve shows the determinism guarantee of the parallel solve
// pipeline: Parallelism 1 (serial) and Parallelism 0 (one worker per
// processor) compute bit-identical solutions.
func ExampleFlow_Solve() {
	scan, err := reseeding.ScanView("s420")
	if err != nil {
		panic(err)
	}
	flow, err := reseeding.Prepare(scan, reseeding.ATPGOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	gen, err := reseeding.NewTPG("adder", len(scan.Inputs))
	if err != nil {
		panic(err)
	}
	serial, err := flow.Solve(gen, reseeding.Options{Cycles: 64, Seed: 2, Parallelism: 1})
	if err != nil {
		panic(err)
	}
	parallel, err := flow.Solve(gen, reseeding.Options{Cycles: 64, Seed: 2, Parallelism: 0})
	if err != nil {
		panic(err)
	}
	fmt.Println("triplets:", serial.NumTriplets(), parallel.NumTriplets())
	fmt.Println("identical:", serial.TestLength == parallel.TestLength &&
		serial.ROMBits == parallel.ROMBits)
	// Output:
	// triplets: 13 13
	// identical: true
}

// ExampleNewTPG lists the functional modules available as test pattern
// generators and constructs one.
func ExampleNewTPG() {
	fmt.Println(reseeding.TPGKinds())
	gen, err := reseeding.NewTPG("multiplier", 16)
	if err != nil {
		panic(err)
	}
	fmt.Println(gen.Name(), gen.Width())
	// Output:
	// [adder subtracter multiplier lfsr]
	// multiplier 16
}

// ExampleScanView shows the full-scan combinational view consumed by
// Prepare: flip-flops of the sequential benchmark become pseudo
// inputs/outputs.
func ExampleScanView() {
	seq, err := reseeding.OpenBenchmark("s420")
	if err != nil {
		panic(err)
	}
	scan, err := reseeding.ScanView("s420")
	if err != nil {
		panic(err)
	}
	fmt.Printf("sequential: %d inputs\n", len(seq.Inputs))
	fmt.Printf("full scan:  %d inputs, combinational %v\n",
		len(scan.Inputs), scan.IsCombinational())
	// Output:
	// sequential: 18 inputs
	// full scan:  39 inputs, combinational true
}
