package reseeding

import (
	"strings"
	"testing"
)

// The facade must support the documented quickstart verbatim.
func TestQuickstartFlow(t *testing.T) {
	scan, err := ScanView("s420")
	if err != nil {
		t.Fatal(err)
	}
	flow, err := Prepare(scan, ATPGOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewTPG("adder", len(scan.Inputs))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := flow.Solve(gen, Options{Cycles: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumTriplets() == 0 || sol.TestLength == 0 {
		t.Errorf("empty solution: %+v", sol)
	}
}

func TestRunOneShot(t *testing.T) {
	sol, err := Run("s820", "multiplier", ATPGOptions{Seed: 1}, Options{Cycles: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Generator != "multiplier" || sol.Circuit != "s820_scan" {
		t.Errorf("labels: %q %q", sol.Generator, sol.Circuit)
	}
}

func TestBenchmarksListed(t *testing.T) {
	names := Benchmarks()
	if len(names) < 16 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	c, err := OpenBenchmark(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLogicGates() == 0 {
		t.Error("benchmark has no gates")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = NAND(a, b)
`
	c, err := ParseBench("tiny", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := FormatBench(c)
	if !strings.Contains(out, "NAND") {
		t.Errorf("format lost the gate:\n%s", out)
	}
	faults, err := Faults(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) == 0 {
		t.Error("no faults enumerated")
	}
}

func TestTPGKindsConstructible(t *testing.T) {
	for _, kind := range TPGKinds() {
		g, err := NewTPG(kind, 24)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if g.Width() != 24 {
			t.Errorf("%s width = %d", kind, g.Width())
		}
	}
}

func TestCoverProblemExposed(t *testing.T) {
	p := NewCoverProblem(3)
	// Rows via the internal bitset are not exposed directly; the facade
	// only promises construction and solving of problems built through the
	// reseeding flow. Verify the empty instance solves trivially... by
	// checking zero columns are uncoverable.
	if p.NumCols() != 3 || p.NumRows() != 0 {
		t.Errorf("problem shape: %d x %d", p.NumRows(), p.NumCols())
	}
	if got := p.UncoverableColumns(); len(got) != 3 {
		t.Errorf("empty problem should have 3 uncoverable columns, got %v", got)
	}
}

func TestSynthesizeTPGAndSimulate(t *testing.T) {
	hw, err := SynthesizeTPG("adder", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hw.DFFs) != 8 || len(hw.Outputs) != 8 {
		t.Fatalf("unexpected TPG shape: %d DFFs, %d outputs", len(hw.DFFs), len(hw.Outputs))
	}
	sim, err := NewSequentialSimulator(hw)
	if err != nil {
		t.Fatal(err)
	}
	// One step from state 0 with theta=1 must produce state 0 then 1.
	in := make([]uint64, len(hw.Inputs))
	in[0] = 1 // theta bit 0 high in stream 0
	out, err := sim.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&1 != 0 {
		t.Error("first output should be the zero seed")
	}
	out, err = sim.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0]&1 != 1 {
		t.Error("second output should show the increment")
	}
	if _, err := SynthesizeTPG("bogus", 8); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunGatsbyFacade(t *testing.T) {
	scan, err := ScanView("s820")
	if err != nil {
		t.Fatal(err)
	}
	flow, err := Prepare(scan, ATPGOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := NewTPG("adder", len(scan.Inputs))
	res, err := RunGatsby(scan, flow.TargetFaults, gen, GatsbyConfig{
		Seed: 1, Cycles: 64, Population: 6, Generations: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triplets) == 0 {
		t.Error("baseline produced nothing")
	}
}

func TestRunExperimentsFacade(t *testing.T) {
	results, err := RunExperiments(ExperimentConfig{
		Circuits: []string{"s420"},
		Cycles:   32,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Circuit != "s420" {
		t.Fatalf("unexpected results: %+v", results)
	}
}
